package anneal

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"
)

// quadState minimises sum (x_i - target_i)^2 over integer vectors; moves
// adjust one coordinate by +-1.
type quadState struct {
	x      []int
	target []int
}

func (s *quadState) Cost() float64 {
	c := 0.0
	for i := range s.x {
		d := float64(s.x[i] - s.target[i])
		c += d * d
	}
	return c
}

func (s *quadState) Perturb(rng *rand.Rand) func() {
	i := rng.Intn(len(s.x))
	delta := 1
	if rng.Intn(2) == 0 {
		delta = -1
	}
	s.x[i] += delta
	return func() { s.x[i] -= delta }
}

func (s *quadState) Snapshot() interface{} { return append([]int(nil), s.x...) }
func (s *quadState) Restore(v interface{}) { copy(s.x, v.([]int)) }

func TestMinimizeQuadratic(t *testing.T) {
	s := &quadState{x: make([]int, 6), target: []int{5, -3, 7, 0, 2, -8}}
	initial := s.Cost()
	res := Minimize(context.Background(), s, Options{Seed: 1, InitialTemp: 50, FinalTemp: 0.01, MovesPerTemp: 200, Cooling: 0.9})
	if res.BestCost >= initial {
		t.Errorf("no improvement: best %v initial %v", res.BestCost, initial)
	}
	if res.BestCost > 4 {
		t.Errorf("best cost %v, expected near-zero", res.BestCost)
	}
	// The state must be left at the best snapshot.
	if math.Abs(s.Cost()-res.BestCost) > 1e-9 {
		t.Errorf("state cost %v != best %v", s.Cost(), res.BestCost)
	}
	if res.Moves == 0 || res.Accepted == 0 {
		t.Error("expected some moves and acceptances")
	}
	if res.InitialCost != initial {
		t.Error("initial cost not recorded")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() float64 {
		s := &quadState{x: make([]int, 4), target: []int{3, 3, 3, 3}}
		res := Minimize(context.Background(), s, Options{Seed: 42, InitialTemp: 10, FinalTemp: 0.1, MovesPerTemp: 50})
		return res.BestCost
	}
	if run() != run() {
		t.Error("same seed should give identical results")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := &quadState{x: []int{10}, target: []int{0}}
	res := Minimize(context.Background(), s, Options{Seed: 3})
	if res.Moves == 0 {
		t.Error("defaults should allow at least one move")
	}
	if res.BestCost > res.InitialCost {
		t.Error("best cost should never exceed initial cost")
	}
}

func TestTimeLimit(t *testing.T) {
	s := &quadState{x: make([]int, 100), target: make([]int, 100)}
	for i := range s.target {
		s.target[i] = 1000
	}
	start := time.Now()
	Minimize(context.Background(), s, Options{Seed: 5, InitialTemp: 1e6, FinalTemp: 1e-9, MovesPerTemp: 100000, Cooling: 0.999999, TimeLimit: 30 * time.Millisecond})
	if time.Since(start) > 2*time.Second {
		t.Errorf("time limit ignored: %v", time.Since(start))
	}
}

func TestReheats(t *testing.T) {
	s := &quadState{x: make([]int, 5), target: []int{9, 9, 9, 9, 9}}
	res := Minimize(context.Background(), s, Options{Seed: 7, InitialTemp: 20, FinalTemp: 0.5, MovesPerTemp: 30, Reheats: 2})
	if res.BestCost > res.InitialCost {
		t.Error("reheated run worse than initial state")
	}
}
