// Package anneal provides a small, generic simulated-annealing engine. The
// 2DOSP planner of E-BLOW plugs a sequence-pair floorplanning state into it;
// the baseline planner (the prior-work flow the paper compares against) uses
// the same engine without the clustering front end, so that the measured
// difference between the two is the algorithmic contribution and not the
// annealer.
//
// The engine is cancellable: Minimize polls its context between moves and
// returns the best state found so far when the context is done, so callers
// can bound a run with a deadline or cancel it outright. MultiStart runs K
// independent seeded restarts on a bounded worker pool and merges the
// outcomes in restart order, which keeps the result deterministic for a
// fixed seed no matter how many workers execute the restarts.
package anneal

import (
	"context"
	"math"
	"math/rand"
	"time"

	"eblow/internal/par"
)

// State is a mutable optimization state. Perturb applies a random move and
// returns an undo function; Cost evaluates the current state; Snapshot and
// Restore save and reinstate the best state found.
//
// The engine only ever uses the undo returned by the most recent Perturb and
// uses it at most once (immediately, when the move is rejected), so states
// may return a shared pre-allocated closure instead of allocating one per
// move. Likewise the engine holds at most one live snapshot at a time —
// every improvement's Snapshot replaces the previous one — so states may
// rotate snapshots through two reusable buffers instead of allocating. Any
// future engine change that keeps several snapshots alive at once breaks
// that contract and must not be made silently.
type State interface {
	Cost() float64
	Perturb(rng *rand.Rand) (undo func())
	Snapshot() interface{}
	Restore(snapshot interface{})
}

// DeltaState is an optional extension for states with incremental cost
// evaluation. PerturbCost applies one random move and returns the cost of
// the resulting state together with the undo, fusing Perturb and Cost into
// one call: the state can evaluate the move as a delta while it still knows
// exactly what changed, instead of re-deriving the cost from scratch.
//
// PerturbCost must consume exactly the same random draws as Perturb and
// return exactly the value Cost would, so that a state implementing both
// interfaces anneals along a bit-identical trajectory either way.
type DeltaState interface {
	State
	PerturbCost(rng *rand.Rand) (cost float64, undo func())
}

// Options configures a run.
type Options struct {
	// InitialTemp is the starting temperature. If zero it is estimated from
	// the cost of the initial state.
	InitialTemp float64
	// FinalTemp stops the schedule (default 1e-3 of the initial temperature).
	FinalTemp float64
	// Cooling is the geometric cooling factor in (0,1); default 0.93.
	Cooling float64
	// MovesPerTemp is the number of proposed moves per temperature step;
	// default 60.
	MovesPerTemp int
	// Seed seeds the internal random generator.
	Seed int64
	// TimeLimit bounds the wall-clock time (0 = no limit).
	TimeLimit time.Duration
	// Reheats is the number of times the schedule restarts from a fraction
	// of the initial temperature after finishing; default 0.
	Reheats int
}

func (o Options) withDefaults(initialCost float64) Options {
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.93
	}
	if o.MovesPerTemp <= 0 {
		o.MovesPerTemp = 60
	}
	if o.InitialTemp <= 0 {
		o.InitialTemp = math.Max(1, math.Abs(initialCost)*0.3)
	}
	if o.FinalTemp <= 0 {
		o.FinalTemp = o.InitialTemp * 1e-3
	}
	return o
}

// Result summarises a run.
type Result struct {
	BestCost    float64
	InitialCost float64
	Moves       int
	Accepted    int
	Elapsed     time.Duration
}

// Minimize runs simulated annealing on the state and leaves it restored to
// the best configuration found. A done context stops the schedule early; the
// state still holds the best configuration seen up to that point.
func Minimize(ctx context.Context, s State, opt Options) Result {
	start := time.Now()
	initial := s.Cost()
	opt = opt.withDefaults(initial)
	rng := rand.New(rand.NewSource(opt.Seed))

	res := Result{BestCost: initial, InitialCost: initial}
	best := s.Snapshot()
	cur := initial

	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}
	done := ctx.Done()
	stopped := func() bool {
		select {
		case <-done:
			return true
		default:
		}
		//eblow:nondet-ok deadline cutoff is sanctioned cancellation: it decides when the search stops, never which candidate wins a merge
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	// Cost-delta aware acceptance: a DeltaState evaluates the move it just
	// made incrementally inside PerturbCost; plain states pay a separate
	// full Cost call per move.
	ds, hasDelta := s.(DeltaState)

	runSchedule := func(startTemp float64) {
		temp := startTemp
		for temp > opt.FinalTemp {
			for i := 0; i < opt.MovesPerTemp; i++ {
				if stopped() {
					return
				}
				var next float64
				var undo func()
				if hasDelta {
					next, undo = ds.PerturbCost(rng)
				} else {
					undo = s.Perturb(rng)
					next = s.Cost()
				}
				res.Moves++
				delta := next - cur
				if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
					cur = next
					res.Accepted++
					if cur < res.BestCost {
						res.BestCost = cur
						best = s.Snapshot()
					}
				} else {
					undo()
				}
			}
			temp *= opt.Cooling
		}
	}

	runSchedule(opt.InitialTemp)
	for r := 0; r < opt.Reheats; r++ {
		if stopped() {
			break
		}
		// Restart from the best state at a reduced temperature.
		s.Restore(best)
		cur = res.BestCost
		runSchedule(opt.InitialTemp * 0.3)
	}

	s.Restore(best)
	res.Elapsed = time.Since(start)
	return res
}

// Run is the outcome of one restart of a multi-start annealing run.
type Run struct {
	// State is the restart's state, restored to its best configuration.
	State State
	// Result summarises the restart.
	Result Result
}

// MultiStart runs `restarts` independent annealing runs on states produced
// by newState (called with the restart index) and returns the outcomes
// indexed by restart. Each restart derives its own seed from opt.Seed and the
// restart index, so the set of runs is identical no matter how many workers
// execute them; callers pick the winner by scanning the slice in order,
// which makes the merge deterministic. workers <= 0 means one worker per
// restart. A done context stops every run early (the runs still report
// their best-so-far states).
func MultiStart(ctx context.Context, newState func(restart int) State, restarts, workers int, opt Options) []Run {
	if restarts <= 0 {
		restarts = 1
	}
	if workers <= 0 || workers > restarts {
		workers = restarts
	}
	runs := make([]Run, restarts)
	par.For(workers, restarts, func(r int) {
		o := opt
		// Large odd stride keeps per-restart seeds distinct even when
		// callers use small consecutive base seeds.
		o.Seed = opt.Seed + int64(r)*7919
		st := newState(r)
		runs[r] = Run{State: st, Result: Minimize(ctx, st, o)}
	})
	return runs
}
