// Package anneal provides a small, generic simulated-annealing engine. The
// 2DOSP planner of E-BLOW plugs a sequence-pair floorplanning state into it;
// the baseline planner (the prior-work flow the paper compares against) uses
// the same engine without the clustering front end, so that the measured
// difference between the two is the algorithmic contribution and not the
// annealer.
package anneal

import (
	"math"
	"math/rand"
	"time"
)

// State is a mutable optimization state. Perturb applies a random move and
// returns an undo function; Cost evaluates the current state; Snapshot and
// Restore save and reinstate the best state found.
type State interface {
	Cost() float64
	Perturb(rng *rand.Rand) (undo func())
	Snapshot() interface{}
	Restore(snapshot interface{})
}

// Options configures a run.
type Options struct {
	// InitialTemp is the starting temperature. If zero it is estimated from
	// the cost of the initial state.
	InitialTemp float64
	// FinalTemp stops the schedule (default 1e-3 of the initial temperature).
	FinalTemp float64
	// Cooling is the geometric cooling factor in (0,1); default 0.93.
	Cooling float64
	// MovesPerTemp is the number of proposed moves per temperature step;
	// default 60.
	MovesPerTemp int
	// Seed seeds the internal random generator.
	Seed int64
	// TimeLimit bounds the wall-clock time (0 = no limit).
	TimeLimit time.Duration
	// Reheats is the number of times the schedule restarts from a fraction
	// of the initial temperature after finishing; default 0.
	Reheats int
}

func (o Options) withDefaults(initialCost float64) Options {
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = 0.93
	}
	if o.MovesPerTemp <= 0 {
		o.MovesPerTemp = 60
	}
	if o.InitialTemp <= 0 {
		o.InitialTemp = math.Max(1, math.Abs(initialCost)*0.3)
	}
	if o.FinalTemp <= 0 {
		o.FinalTemp = o.InitialTemp * 1e-3
	}
	return o
}

// Result summarises a run.
type Result struct {
	BestCost    float64
	InitialCost float64
	Moves       int
	Accepted    int
	Elapsed     time.Duration
}

// Minimize runs simulated annealing on the state and leaves it restored to
// the best configuration found.
func Minimize(s State, opt Options) Result {
	start := time.Now()
	initial := s.Cost()
	opt = opt.withDefaults(initial)
	rng := rand.New(rand.NewSource(opt.Seed))

	res := Result{BestCost: initial, InitialCost: initial}
	best := s.Snapshot()
	cur := initial

	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}

	runSchedule := func(startTemp float64) {
		temp := startTemp
		for temp > opt.FinalTemp {
			for i := 0; i < opt.MovesPerTemp; i++ {
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				undo := s.Perturb(rng)
				next := s.Cost()
				res.Moves++
				delta := next - cur
				if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
					cur = next
					res.Accepted++
					if cur < res.BestCost {
						res.BestCost = cur
						best = s.Snapshot()
					}
				} else {
					undo()
				}
			}
			temp *= opt.Cooling
		}
	}

	runSchedule(opt.InitialTemp)
	for r := 0; r < opt.Reheats; r++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		// Restart from the best state at a reduced temperature.
		s.Restore(best)
		cur = res.BestCost
		runSchedule(opt.InitialTemp * 0.3)
	}

	s.Restore(best)
	res.Elapsed = time.Since(start)
	return res
}
