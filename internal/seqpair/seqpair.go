// Package seqpair implements the sequence-pair representation for rectangle
// packing (Murata et al.) together with the O(n log n) longest-weighted-
// common-subsequence evaluation (Tang/Chang/Wong). The 2DOSP planner of
// E-BLOW uses it as the floorplan representation inside simulated annealing,
// exactly as the Parquet-based flow of the prior work it compares against.
package seqpair

import (
	"fmt"
	"math/rand"
)

// Block is a rectangle to pack.
type Block struct {
	W, H int
}

// SeqPair is a pair of permutations (Gamma+, Gamma-) of the block indices
// 0..n-1. Block b is left of block c iff b precedes c in both sequences;
// it is below c iff b follows c in Gamma+ and precedes it in Gamma-.
type SeqPair struct {
	Pos []int // Gamma+
	Neg []int // Gamma-
}

// New returns the identity sequence pair for n blocks.
func New(n int) *SeqPair {
	sp := &SeqPair{Pos: make([]int, n), Neg: make([]int, n)}
	for i := 0; i < n; i++ {
		sp.Pos[i] = i
		sp.Neg[i] = i
	}
	return sp
}

// Random returns a uniformly random sequence pair for n blocks.
func Random(n int, rng *rand.Rand) *SeqPair {
	sp := New(n)
	rng.Shuffle(n, func(i, j int) { sp.Pos[i], sp.Pos[j] = sp.Pos[j], sp.Pos[i] })
	rng.Shuffle(n, func(i, j int) { sp.Neg[i], sp.Neg[j] = sp.Neg[j], sp.Neg[i] })
	return sp
}

// Clone returns a deep copy.
func (sp *SeqPair) Clone() *SeqPair {
	return &SeqPair{
		Pos: append([]int(nil), sp.Pos...),
		Neg: append([]int(nil), sp.Neg...),
	}
}

// CopyFrom copies the permutations of src into sp without allocating; the
// two sequence pairs must have the same length. It is the allocation-free
// counterpart of Clone for callers that reuse snapshot buffers.
func (sp *SeqPair) CopyFrom(src *SeqPair) {
	if len(sp.Pos) != len(src.Pos) {
		panic("seqpair: CopyFrom length mismatch")
	}
	copy(sp.Pos, src.Pos)
	copy(sp.Neg, src.Neg)
}

// Len returns the number of blocks.
func (sp *SeqPair) Len() int { return len(sp.Pos) }

// Validate checks that both sequences are permutations of 0..n-1.
func (sp *SeqPair) Validate() error {
	n := len(sp.Pos)
	if len(sp.Neg) != n {
		return fmt.Errorf("seqpair: sequences have different lengths %d and %d", n, len(sp.Neg))
	}
	check := func(name string, seq []int) error {
		seen := make([]bool, n)
		for _, v := range seq {
			if v < 0 || v >= n || seen[v] {
				return fmt.Errorf("seqpair: %s is not a permutation", name)
			}
			seen[v] = true
		}
		return nil
	}
	if err := check("Gamma+", sp.Pos); err != nil {
		return err
	}
	return check("Gamma-", sp.Neg)
}

// SwapPos swaps two positions in Gamma+.
func (sp *SeqPair) SwapPos(i, j int) { sp.Pos[i], sp.Pos[j] = sp.Pos[j], sp.Pos[i] }

// SwapNeg swaps two positions in Gamma-.
func (sp *SeqPair) SwapNeg(i, j int) { sp.Neg[i], sp.Neg[j] = sp.Neg[j], sp.Neg[i] }

// SwapBoth swaps block indices a and b in both sequences (a full exchange of
// the two blocks' topological roles).
func (sp *SeqPair) SwapBoth(a, b int) {
	posIdx := make(map[int]int, 2)
	negIdx := make(map[int]int, 2)
	for i, v := range sp.Pos {
		if v == a || v == b {
			posIdx[v] = i
		}
	}
	for i, v := range sp.Neg {
		if v == a || v == b {
			negIdx[v] = i
		}
	}
	sp.Pos[posIdx[a]], sp.Pos[posIdx[b]] = sp.Pos[posIdx[b]], sp.Pos[posIdx[a]]
	sp.Neg[negIdx[a]], sp.Neg[negIdx[b]] = sp.Neg[negIdx[b]], sp.Neg[negIdx[a]]
}

// Packing is the result of evaluating a sequence pair.
type Packing struct {
	X, Y   []int
	Width  int
	Height int
}

// Pack computes the minimum-area placement realising the sequence pair for
// the given blocks using the longest-weighted-common-subsequence method.
// Complexity is O(n log n).
func Pack(sp *SeqPair, blocks []Block) *Packing {
	n := len(blocks)
	if len(sp.Pos) != n || len(sp.Neg) != n {
		panic("seqpair: sequence pair and block count mismatch")
	}
	p := &Packing{X: make([]int, n), Y: make([]int, n)}
	if n == 0 {
		return p
	}

	// X coordinates: weighted LCS of (Gamma+, Gamma-) with block widths.
	posIndex := make([]int, n) // posIndex[block] = position of block in Gamma+
	for i, b := range sp.Pos {
		posIndex[b] = i
	}
	widths := func(b int) int { return blocks[b].W }
	heights := func(b int) int { return blocks[b].H }

	p.Width = lwcs(sp.Neg, posIndex, widths, p.X)

	// Y coordinates: weighted LCS of (reverse Gamma+, Gamma-) with heights.
	revIndex := make([]int, n)
	for i, b := range sp.Pos {
		revIndex[b] = n - 1 - i
	}
	p.Height = lwcs(sp.Neg, revIndex, heights, p.Y)
	return p
}

// lwcs processes blocks in Gamma- order; for each block it looks up the best
// accumulated length among blocks whose key (position in the other sequence)
// is smaller, assigns that as the block coordinate, and records coordinate +
// size at its key. A Fenwick tree over keys maintains prefix maxima.
func lwcs(order []int, key []int, size func(int) int, coord []int) int {
	n := len(order)
	ft := newFenwickMax(n)
	total := 0
	for _, b := range order {
		k := key[b]
		start := 0
		if k > 0 {
			start = ft.prefixMax(k - 1)
		}
		coord[b] = start
		end := start + size(b)
		ft.update(k, end)
		if end > total {
			total = end
		}
	}
	return total
}

// fenwickMax is a Fenwick tree over indices 0..n-1 supporting point updates
// with max and prefix-max queries.
type fenwickMax struct {
	tree []int
}

func newFenwickMax(n int) *fenwickMax {
	return &fenwickMax{tree: make([]int, n+1)}
}

func (f *fenwickMax) update(i, v int) {
	for i++; i < len(f.tree); i += i & (-i) {
		if f.tree[i] < v {
			f.tree[i] = v
		}
	}
}

func (f *fenwickMax) prefixMax(i int) int {
	best := 0
	for i++; i > 0; i -= i & (-i) {
		if f.tree[i] > best {
			best = f.tree[i]
		}
	}
	return best
}
