package seqpair

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndValidate(t *testing.T) {
	sp := New(4)
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.Len() != 4 {
		t.Errorf("Len = %d", sp.Len())
	}
	bad := &SeqPair{Pos: []int{0, 1}, Neg: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch should fail validation")
	}
	bad = &SeqPair{Pos: []int{0, 0}, Neg: []int{0, 1}}
	if err := bad.Validate(); err == nil {
		t.Error("non-permutation should fail validation")
	}
	bad = &SeqPair{Pos: []int{0, 1}, Neg: []int{0, 5}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range entry should fail validation")
	}
}

func TestCloneIsDeep(t *testing.T) {
	sp := New(3)
	cl := sp.Clone()
	cl.SwapPos(0, 1)
	if sp.Pos[0] != 0 {
		t.Error("Clone shares backing storage")
	}
}

func TestSwapBoth(t *testing.T) {
	sp := &SeqPair{Pos: []int{2, 0, 1}, Neg: []int{1, 2, 0}}
	sp.SwapBoth(0, 2)
	wantPos := []int{0, 2, 1}
	wantNeg := []int{1, 0, 2}
	for i := range wantPos {
		if sp.Pos[i] != wantPos[i] || sp.Neg[i] != wantNeg[i] {
			t.Fatalf("SwapBoth: got %v/%v, want %v/%v", sp.Pos, sp.Neg, wantPos, wantNeg)
		}
	}
	if err := sp.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPackTwoBlocksHorizontal(t *testing.T) {
	// Identity sequence pair: block 0 left of block 1.
	sp := New(2)
	blocks := []Block{{W: 10, H: 5}, {W: 7, H: 9}}
	p := Pack(sp, blocks)
	if p.X[0] != 0 || p.X[1] != 10 {
		t.Errorf("X = %v, want [0 10]", p.X)
	}
	if p.Y[0] != 0 || p.Y[1] != 0 {
		t.Errorf("Y = %v, want [0 0]", p.Y)
	}
	if p.Width != 17 || p.Height != 9 {
		t.Errorf("bounding box = %dx%d, want 17x9", p.Width, p.Height)
	}
}

func TestPackTwoBlocksVertical(t *testing.T) {
	// (<1 0>, <0 1>): block 0 below block 1.
	sp := &SeqPair{Pos: []int{1, 0}, Neg: []int{0, 1}}
	blocks := []Block{{W: 10, H: 5}, {W: 7, H: 9}}
	p := Pack(sp, blocks)
	if p.X[0] != 0 || p.X[1] != 0 {
		t.Errorf("X = %v, want [0 0]", p.X)
	}
	if p.Y[0] != 0 || p.Y[1] != 5 {
		t.Errorf("Y = %v, want [0 5]", p.Y)
	}
	if p.Width != 10 || p.Height != 14 {
		t.Errorf("bounding box = %dx%d, want 10x14", p.Width, p.Height)
	}
}

func TestPackEmpty(t *testing.T) {
	p := Pack(New(0), nil)
	if p.Width != 0 || p.Height != 0 {
		t.Error("empty packing should have zero size")
	}
}

func TestPackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Pack(New(2), []Block{{1, 1}})
}

func TestPackThreeBlocksKnown(t *testing.T) {
	// Gamma+ = <0 1 2>, Gamma- = <1 0 2>:
	// 1 before 0 in Gamma-, after? 0 precedes 1 in Gamma+, 1 precedes 0 in
	// Gamma- => 0 is above 1. 2 is after both in both sequences => right of
	// both.
	sp := &SeqPair{Pos: []int{0, 1, 2}, Neg: []int{1, 0, 2}}
	blocks := []Block{{W: 4, H: 3}, {W: 6, H: 2}, {W: 5, H: 8}}
	p := Pack(sp, blocks)
	// Block 1 at origin, block 0 above it, block 2 to the right of both.
	if p.Y[0] != 2 || p.Y[1] != 0 || p.Y[2] != 0 {
		t.Errorf("Y = %v", p.Y)
	}
	if p.X[0] != 0 || p.X[1] != 0 || p.X[2] != 6 {
		t.Errorf("X = %v", p.X)
	}
	if p.Width != 11 || p.Height != 8 {
		t.Errorf("bounding box = %dx%d, want 11x8", p.Width, p.Height)
	}
}

// overlap checks whether two placed blocks overlap (open intervals).
func overlap(x1, y1 int, b1 Block, x2, y2 int, b2 Block) bool {
	return x1 < x2+b2.W && x2 < x1+b1.W && y1 < y2+b2.H && y2 < y1+b1.H
}

// Property: packings derived from random sequence pairs are always
// overlap-free, fit in the reported bounding box, and respect the
// left-of/below-of semantics of the sequence pair.
func TestPackNoOverlapsAndSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		blocks := make([]Block, n)
		for i := range blocks {
			blocks[i] = Block{W: 1 + rng.Intn(20), H: 1 + rng.Intn(20)}
		}
		sp := Random(n, rng)
		if err := sp.Validate(); err != nil {
			return false
		}
		p := Pack(sp, blocks)
		posIdx := make([]int, n)
		negIdx := make([]int, n)
		for i, b := range sp.Pos {
			posIdx[b] = i
		}
		for i, b := range sp.Neg {
			negIdx[b] = i
		}
		for a := 0; a < n; a++ {
			if p.X[a] < 0 || p.Y[a] < 0 || p.X[a]+blocks[a].W > p.Width || p.Y[a]+blocks[a].H > p.Height {
				return false
			}
			for b := a + 1; b < n; b++ {
				if overlap(p.X[a], p.Y[a], blocks[a], p.X[b], p.Y[b], blocks[b]) {
					return false
				}
				// Semantics: a before b in both sequences => a entirely left of b.
				if posIdx[a] < posIdx[b] && negIdx[a] < negIdx[b] && p.X[a]+blocks[a].W > p.X[b] {
					return false
				}
				if posIdx[b] < posIdx[a] && negIdx[b] < negIdx[a] && p.X[b]+blocks[b].W > p.X[a] {
					return false
				}
				// a after b in Gamma+ and before in Gamma- => a below b.
				if posIdx[a] > posIdx[b] && negIdx[a] < negIdx[b] && p.Y[a]+blocks[a].H > p.Y[b] {
					return false
				}
				if posIdx[b] > posIdx[a] && negIdx[b] < negIdx[a] && p.Y[b]+blocks[b].H > p.Y[a] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: bounding box area is at least the total block area.
func TestPackAreaLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		blocks := make([]Block, n)
		area := 0
		for i := range blocks {
			blocks[i] = Block{W: 1 + rng.Intn(15), H: 1 + rng.Intn(15)}
			area += blocks[i].W * blocks[i].H
		}
		sp := Random(n, rng)
		p := Pack(sp, blocks)
		return p.Width*p.Height >= area
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPack200Blocks(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	blocks := make([]Block, n)
	for i := range blocks {
		blocks[i] = Block{W: 1 + rng.Intn(60), H: 1 + rng.Intn(60)}
	}
	sp := Random(n, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pack(sp, blocks)
	}
}
