package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 103
		hits := make([]int32, n)
		For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	if called {
		t.Error("For called fn for n=0")
	}
}

func TestForResultIndependentOfWorkers(t *testing.T) {
	const n = 50
	want := make([]int, n)
	For(1, n, func(i int) { want[i] = i * i })
	got := make([]int, n)
	For(8, n, func(i int) { got[i] = i * i })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d differs: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestDoRunsEverything(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var count int32
		fns := make([]func(), 9)
		for i := range fns {
			fns[i] = func() { atomic.AddInt32(&count, 1) }
		}
		Do(workers, fns...)
		if count != 9 {
			t.Fatalf("workers=%d: ran %d of 9 tasks", workers, count)
		}
	}
}

func TestPoolRunsEverySubmittedTask(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		p := NewPool(workers)
		var count int32
		for i := 0; i < 50; i++ {
			p.Submit(func() { atomic.AddInt32(&count, 1) })
		}
		p.Close()
		if count != 50 {
			t.Fatalf("workers=%d: ran %d of 50 tasks", workers, count)
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var running, peak int32
	var wg sync.WaitGroup
	wg.Add(20)
	for i := 0; i < 20; i++ {
		p.Submit(func() {
			defer wg.Done()
			now := atomic.AddInt32(&running, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if now <= old || atomic.CompareAndSwapInt32(&peak, old, now) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt32(&running, -1)
		})
	}
	wg.Wait()
	p.Close()
	if peak > workers {
		t.Fatalf("observed %d concurrent tasks on a %d-worker pool", peak, workers)
	}
}

func TestPoolSingleWorkerIsFIFO(t *testing.T) {
	p := NewPool(1)
	var mu sync.Mutex
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		p.Submit(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	p.Close()
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker pool ran out of order: %v", order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("ran %d of 10 tasks", len(order))
	}
}

func TestPoolSubmitAfterClosePanics(t *testing.T) {
	p := NewPool(1)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Error("Submit on a closed pool did not panic")
		}
	}()
	p.Submit(func() {})
}

func TestDoSequentialOrder(t *testing.T) {
	var order []int
	Do(1,
		func() { order = append(order, 0) },
		func() { order = append(order, 1) },
		func() { order = append(order, 2) },
	)
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential Do ran out of order: %v", order)
		}
	}
}
