package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 103
		hits := make([]int32, n)
		For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	if called {
		t.Error("For called fn for n=0")
	}
}

func TestForResultIndependentOfWorkers(t *testing.T) {
	const n = 50
	want := make([]int, n)
	For(1, n, func(i int) { want[i] = i * i })
	got := make([]int, n)
	For(8, n, func(i int) { got[i] = i * i })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d differs: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestDoRunsEverything(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var count int32
		fns := make([]func(), 9)
		for i := range fns {
			fns[i] = func() { atomic.AddInt32(&count, 1) }
		}
		Do(workers, fns...)
		if count != 9 {
			t.Fatalf("workers=%d: ran %d of 9 tasks", workers, count)
		}
	}
}

func TestDoSequentialOrder(t *testing.T) {
	var order []int
	Do(1,
		func() { order = append(order, 0) },
		func() { order = append(order, 1) },
		func() { order = append(order, 2) },
	)
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential Do ran out of order: %v", order)
		}
	}
}
