// Package par provides the tiny deterministic fork-join primitives the
// solver packages share. Both helpers guarantee that work item i only ever
// touches slot i of whatever slices the caller indexes by i, so results are
// identical for any worker count — the merge order is the index order, never
// the completion order.
package par

import "sync"

// For runs fn(i) for every i in [0, n), spread over at most workers
// goroutines (workers <= 1 runs inline). fn must confine its writes to data
// owned by index i; under that contract the outcome is independent of the
// worker count and scheduling.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	// Contiguous chunks: cache-friendly and at most `workers` goroutines.
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Do runs the given functions concurrently, at most workers at a time
// (workers <= 1 runs them sequentially in order), and waits for all of them.
func Do(workers int, fns ...func()) {
	if workers <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	if workers > len(fns) {
		workers = len(fns)
	}
	var wg sync.WaitGroup
	next := make(chan func())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fn := range next {
				fn()
			}
		}()
	}
	for _, fn := range fns {
		next <- fn
	}
	close(next)
	wg.Wait()
}
