// Package par provides the tiny deterministic parallelism primitives the
// solver packages share. The fork-join helpers (For, Do) guarantee that
// work item i only ever touches slot i of whatever slices the caller
// indexes by i, so results are identical for any worker count — the merge
// order is the index order, never the completion order. Pool is the
// persistent counterpart: a long-lived bounded worker pool with an
// unbounded FIFO queue, shared by the batched job service so many submitted
// jobs drain through one fixed set of workers.
package par

import (
	"runtime"
	"sync"
)

// For runs fn(i) for every i in [0, n), spread over at most workers
// goroutines (workers <= 1 runs inline). fn must confine its writes to data
// owned by index i; under that contract the outcome is independent of the
// worker count and scheduling.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	// Contiguous chunks: cache-friendly and at most `workers` goroutines.
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Do runs the given functions concurrently, at most workers at a time
// (workers <= 1 runs them sequentially in order), and waits for all of them.
func Do(workers int, fns ...func()) {
	if workers <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	if workers > len(fns) {
		workers = len(fns)
	}
	var wg sync.WaitGroup
	next := make(chan func())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fn := range next {
				fn()
			}
		}()
	}
	for _, fn := range fns {
		next <- fn
	}
	close(next)
	wg.Wait()
}

// Pool is a persistent bounded worker pool: a fixed number of goroutines
// drain an unbounded FIFO task queue. Unlike Do it outlives a single batch,
// so independent callers can keep submitting work that shares one
// concurrency budget. Submit never blocks; tasks start in submission order
// (workers pick them up first-come, first-served).
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []func()
	closed  bool
	wg      sync.WaitGroup
	workers int
}

// NewPool starts a pool with the given number of workers (<= 0 means one
// worker per CPU).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.work()
	}
	return p
}

// Workers returns the pool's fixed worker count.
func (p *Pool) Workers() int { return p.workers }

// Submit enqueues fn; it never blocks. Submitting to a closed pool panics,
// like sending on a closed channel.
func (p *Pool) Submit(fn func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("par: Submit on closed Pool")
	}
	p.queue = append(p.queue, fn)
	p.mu.Unlock()
	p.cond.Signal()
}

// Close stops accepting work, waits for the queue to drain and every
// running task to finish, then returns.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

func (p *Pool) work() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		fn := p.queue[0]
		p.queue[0] = nil // don't pin the finished task in the backing array
		p.queue = p.queue[1:]
		p.mu.Unlock()
		fn()
	}
}
