// Package exact builds the full ILP formulations (3) and (7) of the E-BLOW
// paper — simultaneous character selection and physical placement — and
// solves them with the branch-and-bound solver of package ilp. The
// formulations are exponential in practice (that is the point of the Table 5
// comparison: they prove optimality on tiny instances and time out beyond a
// dozen candidates), so every call takes a time limit.
package exact

import (
	"context"
	"fmt"
	"time"

	"eblow/internal/core"
	"eblow/internal/ilp"
	"eblow/internal/lp"
)

// Options configures an exact solve.
type Options struct {
	// TimeLimit bounds the branch-and-bound search (0 = only the context
	// bounds it). The formulations are exponential, so production callers
	// always set one.
	TimeLimit time.Duration
	// Workers is the number of branch-and-bound workers evaluating node
	// relaxations in parallel, each on its own simplex clone (0 = one per
	// CPU, 1 = sequential). Status, objective and solution are bit-identical
	// for every worker count.
	Workers int
}

// Result is the outcome of an exact solve.
type Result struct {
	// Solution is nil when the solver hit its limit without an incumbent.
	Solution *core.Solution
	// Status is the branch-and-bound status.
	Status ilp.Status
	// Optimal reports whether the returned solution is provably optimal.
	Optimal bool
	// Nodes is the number of explored branch-and-bound nodes.
	Nodes int
	// BinaryVariables is the number of 0/1 variables in the formulation.
	BinaryVariables int
	Elapsed         time.Duration
}

// Solve1D builds formulation (3) for a 1DOSP instance and solves it exactly.
// Variables: x_i (continuous positions), a_ik (assignment of character i to
// row k) and p_ij (left/right ordering); constraints (3a)-(3f). The context
// cancels the branch-and-bound search; an already-done context returns
// ctx.Err() before any work happens.
func Solve1D(ctx context.Context, in *core.Instance, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Kind != core.OneD {
		return nil, fmt.Errorf("exact: %q is not a 1DOSP instance", in.Name)
	}
	n := in.NumCharacters()
	m := in.NumRows()
	if m == 0 {
		return nil, fmt.Errorf("exact: stencil of %q has no rows", in.Name)
	}
	W := float64(in.StencilWidth)

	// Variable layout:
	//   0                 : Ttotal
	//   1 .. n            : x_i
	//   1+n + i*m + k     : a_ik
	//   pBase + pairIndex : p_ij (i<j)
	numP := n * (n - 1) / 2
	aBase := 1 + n
	pBase := aBase + n*m
	total := pBase + numP
	pIdx := func(i, j int) int { // requires i < j
		return pBase + (i*(2*n-i-1))/2 + (j - i - 1)
	}

	prob := lp.NewProblem(total)
	obj := make([]float64, total)
	obj[0] = 1
	prob.SetObjective(obj, false) // minimize Ttotal

	vsb := in.VSBTime()
	maxVSB := core.MaxInt64(vsb)
	prob.SetBounds(0, 0, float64(maxVSB))

	var binaries []int
	for i := 0; i < n; i++ {
		wi := float64(in.Characters[i].Width)
		prob.SetBounds(1+i, 0, W-wi) // (3b)
		for k := 0; k < m; k++ {
			v := aBase + i*m + k
			prob.SetBounds(v, 0, 1)
			binaries = append(binaries, v)
		}
	}
	for p := 0; p < numP; p++ {
		prob.SetBounds(pBase+p, 0, 1)
		binaries = append(binaries, pBase+p)
	}

	// (3a): Ttotal >= TVSB_c - sum_i R_ic * sum_k a_ik.
	for c := 0; c < in.NumRegions; c++ {
		terms := []lp.Term{{Var: 0, Coeff: 1}}
		for i := 0; i < n; i++ {
			r := float64(in.Reduction(i, c))
			if r == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				terms = append(terms, lp.Term{Var: aBase + i*m + k, Coeff: r})
			}
		}
		prob.AddConstraint(terms, lp.GE, float64(vsb[c]))
	}
	// (3c): each character on at most one row.
	for i := 0; i < n; i++ {
		terms := make([]lp.Term, 0, m)
		for k := 0; k < m; k++ {
			terms = append(terms, lp.Term{Var: aBase + i*m + k, Coeff: 1})
		}
		prob.AddConstraint(terms, lp.LE, 1)
	}
	// (3d)/(3e): non-overlap per row with blank sharing, activated only when
	// both characters sit on the same row.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ci, cj := in.Characters[i], in.Characters[j]
			wij := float64(ci.Width - core.HOverlap(ci, cj))
			wji := float64(cj.Width - core.HOverlap(cj, ci))
			p := pIdx(i, j)
			for k := 0; k < m; k++ {
				aik := aBase + i*m + k
				ajk := aBase + j*m + k
				// x_i + wij - x_j <= W*(2 + p_ij - a_ik - a_jk)
				prob.AddConstraint([]lp.Term{
					{Var: 1 + i, Coeff: 1}, {Var: 1 + j, Coeff: -1},
					{Var: p, Coeff: -W}, {Var: aik, Coeff: W}, {Var: ajk, Coeff: W},
				}, lp.LE, 2*W-wij)
				// x_j + wji - x_i <= W*(3 - p_ij - a_ik - a_jk)
				prob.AddConstraint([]lp.Term{
					{Var: 1 + j, Coeff: 1}, {Var: 1 + i, Coeff: -1},
					{Var: p, Coeff: W}, {Var: aik, Coeff: W}, {Var: ajk, Coeff: W},
				}, lp.LE, 3*W-wji)
			}
		}
	}

	res, err := ilp.Solve(ctx, ilp.NewBinaryProblem(prob, binaries), ilp.Options{
		Maximize:  false,
		TimeLimit: opt.TimeLimit,
		Workers:   opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Status:          res.Status,
		Optimal:         res.Status == ilp.Optimal,
		Nodes:           res.Nodes,
		BinaryVariables: len(binaries),
		Elapsed:         res.Elapsed,
	}
	if res.X == nil {
		return out, nil
	}

	// Decode: row assignment + x positions.
	sol := &core.Solution{Selected: make([]bool, n)}
	rowChars := make(map[int][]int)
	for i := 0; i < n; i++ {
		for k := 0; k < m; k++ {
			if res.X[aBase+i*m+k] > 0.5 {
				sol.Selected[i] = true
				rowChars[k] = append(rowChars[k], i)
			}
		}
	}
	for k := 0; k < m; k++ {
		chars := rowChars[k]
		if len(chars) == 0 {
			continue
		}
		// Order by the x variable and re-pack flush left to remove the
		// slack the big-M constraints allow.
		sortByX(chars, res.X, 1)
		xs := make([]int, len(chars))
		for idx := 1; idx < len(chars); idx++ {
			prev := in.Characters[chars[idx-1]]
			cur := in.Characters[chars[idx]]
			xs[idx] = xs[idx-1] + prev.Width - core.HOverlap(prev, cur)
		}
		sol.Rows = append(sol.Rows, core.Row{Y: k * in.RowHeight, Chars: chars, X: xs})
	}
	sol.PlacementsFromRows()
	sol.Finalize(in, "ILP-1D", res.Elapsed)
	out.Solution = sol
	return out, nil
}

// Solve2D builds formulation (7) for a 2DOSP instance and solves it exactly.
// Variables: a_i (selection), x_i, y_i (positions), p_ij, q_ij (relative
// position encoding); constraints (7a)-(7g). The context cancels the
// branch-and-bound search; an already-done context returns ctx.Err() before
// any work happens.
func Solve2D(ctx context.Context, in *core.Instance, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Kind != core.TwoD {
		return nil, fmt.Errorf("exact: %q is not a 2DOSP instance", in.Name)
	}
	n := in.NumCharacters()
	W := float64(in.StencilWidth)
	H := float64(in.StencilHeight)

	// Variable layout:
	//   0           : Ttotal
	//   1 + i       : a_i
	//   1 + n + i   : x_i
	//   1 + 2n + i  : y_i
	//   pqBase + 2*pairIndex, +1 : p_ij, q_ij
	aBase := 1
	xBase := 1 + n
	yBase := 1 + 2*n
	pqBase := 1 + 3*n
	numPairs := n * (n - 1) / 2
	total := pqBase + 2*numPairs
	pairIdx := func(i, j int) int { return (i*(2*n-i-1))/2 + (j - i - 1) }

	prob := lp.NewProblem(total)
	obj := make([]float64, total)
	obj[0] = 1
	prob.SetObjective(obj, false)

	vsb := in.VSBTime()
	prob.SetBounds(0, 0, float64(core.MaxInt64(vsb)))

	var binaries []int
	for i := 0; i < n; i++ {
		prob.SetBounds(aBase+i, 0, 1)
		binaries = append(binaries, aBase+i)
		prob.SetBounds(xBase+i, 0, W-float64(in.Characters[i].Width))
		prob.SetBounds(yBase+i, 0, H-float64(in.Characters[i].Height))
	}
	for p := 0; p < numPairs; p++ {
		prob.SetBounds(pqBase+2*p, 0, 1)
		prob.SetBounds(pqBase+2*p+1, 0, 1)
		binaries = append(binaries, pqBase+2*p, pqBase+2*p+1)
	}

	// (7a)
	for c := 0; c < in.NumRegions; c++ {
		terms := []lp.Term{{Var: 0, Coeff: 1}}
		for i := 0; i < n; i++ {
			if r := float64(in.Reduction(i, c)); r != 0 {
				terms = append(terms, lp.Term{Var: aBase + i, Coeff: r})
			}
		}
		prob.AddConstraint(terms, lp.GE, float64(vsb[c]))
	}
	// (7b)-(7e)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ci, cj := in.Characters[i], in.Characters[j]
			wij := float64(ci.Width - core.HOverlap(ci, cj))
			wji := float64(cj.Width - core.HOverlap(cj, ci))
			hij := float64(ci.Height - core.VOverlap(ci, cj))
			hji := float64(cj.Height - core.VOverlap(cj, ci))
			p := pqBase + 2*pairIdx(i, j)
			q := p + 1
			ai, aj := aBase+i, aBase+j
			xi, xj := xBase+i, xBase+j
			yi, yj := yBase+i, yBase+j
			// (7b) x_i + wij <= x_j + W(2 + p + q - a_i - a_j)
			prob.AddConstraint([]lp.Term{
				{Var: xi, Coeff: 1}, {Var: xj, Coeff: -1},
				{Var: p, Coeff: -W}, {Var: q, Coeff: -W}, {Var: ai, Coeff: W}, {Var: aj, Coeff: W},
			}, lp.LE, 2*W-wij)
			// (7c) x_i - wji >= x_j - W(3 + p - q - a_i - a_j)
			prob.AddConstraint([]lp.Term{
				{Var: xi, Coeff: 1}, {Var: xj, Coeff: -1},
				{Var: p, Coeff: W}, {Var: q, Coeff: -W}, {Var: ai, Coeff: -W}, {Var: aj, Coeff: -W},
			}, lp.GE, wji-3*W)
			// (7d) y_i + hij <= y_j + H(3 - p + q - a_i - a_j)
			prob.AddConstraint([]lp.Term{
				{Var: yi, Coeff: 1}, {Var: yj, Coeff: -1},
				{Var: p, Coeff: H}, {Var: q, Coeff: -H}, {Var: ai, Coeff: H}, {Var: aj, Coeff: H},
			}, lp.LE, 3*H-hij)
			// (7e) y_i - hji >= y_j - H(4 - p - q - a_i - a_j)
			prob.AddConstraint([]lp.Term{
				{Var: yi, Coeff: 1}, {Var: yj, Coeff: -1},
				{Var: p, Coeff: -H}, {Var: q, Coeff: -H}, {Var: ai, Coeff: -H}, {Var: aj, Coeff: -H},
			}, lp.GE, hji-4*H)
		}
	}

	res, err := ilp.Solve(ctx, ilp.NewBinaryProblem(prob, binaries), ilp.Options{
		Maximize:  false,
		TimeLimit: opt.TimeLimit,
		Workers:   opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Status:          res.Status,
		Optimal:         res.Status == ilp.Optimal,
		Nodes:           res.Nodes,
		BinaryVariables: len(binaries),
		Elapsed:         res.Elapsed,
	}
	if res.X == nil {
		return out, nil
	}
	sol := &core.Solution{Selected: make([]bool, n)}
	for i := 0; i < n; i++ {
		if res.X[aBase+i] > 0.5 {
			sol.Selected[i] = true
			sol.Placements = append(sol.Placements, core.Placement{
				Char: i,
				X:    int(res.X[xBase+i] + 0.5),
				Y:    int(res.X[yBase+i] + 0.5),
			})
		}
	}
	sol.Finalize(in, "ILP-2D", res.Elapsed)
	out.Solution = sol
	return out, nil
}

// sortByX orders character ids by their continuous position variables.
func sortByX(chars []int, x []float64, base int) {
	for a := 0; a < len(chars); a++ {
		for b := a + 1; b < len(chars); b++ {
			if x[base+chars[b]] < x[base+chars[a]] {
				chars[a], chars[b] = chars[b], chars[a]
			}
		}
	}
}
