package exact

import (
	"context"
	"errors"
	"testing"
	"time"

	"eblow/internal/gen"
)

func TestSolveCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in1, err := gen.ByName("1T-1")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := Solve1D(ctx, in1, Options{TimeLimit: time.Minute}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Solve1D: expected context.Canceled, got %v", err)
	}
	in2, err := gen.ByName("2T-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve2D(ctx, in2, Options{TimeLimit: time.Minute}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Solve2D: expected context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancelled solves took %s", d)
	}
}

// A context cancelled mid-search must stop branch and bound well before the
// nominal time limit.
func TestSolveContextDeadlineCutsSearch(t *testing.T) {
	in, err := gen.ByName("1T-5")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Solve1D(ctx, in, Options{TimeLimit: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("context deadline ignored: search ran %s", d)
	}
	_ = res // any status is fine; the point is the prompt return
}
