package exact

import (
	"context"
	"testing"
	"time"

	"eblow/internal/core"
	"eblow/internal/gen"
	"eblow/internal/ilp"
	"eblow/internal/oned"
)

// tiny1D builds a single-row instance small enough for the exact ILP.
func tiny1D(n int) *core.Instance {
	p := gen.Params{
		Name: "exact-tiny", Kind: core.OneD,
		NumChars: n, NumRegions: 1,
		StencilW: 150, StencilH: 40, RowHeight: 40,
		MinWidth: 40, MaxWidth: 40,
		MinBlank: 3, MaxBlank: 12,
		MinShots: 2, MaxShots: 30, ShotAreaUnit: 45,
		MaxRepeat: 10,
		Seed:      42,
	}
	return gen.Generate(p)
}

func TestSolve1DTinyOptimal(t *testing.T) {
	in := tiny1D(5)
	res, err := Solve1D(context.Background(), in, Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Solution == nil {
		t.Fatalf("expected an optimal solution, got status %v", res.Status)
	}
	if err := res.Solution.Validate(in); err != nil {
		t.Fatalf("exact solution invalid: %v", err)
	}
	if res.BinaryVariables == 0 || res.Nodes == 0 {
		t.Error("suspicious solver statistics")
	}

	// The exact optimum must never be worse than the E-BLOW heuristic.
	heur, _, err := oned.Solve(context.Background(), in, oned.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.WritingTime > heur.WritingTime {
		t.Errorf("ILP writing time %d worse than heuristic %d", res.Solution.WritingTime, heur.WritingTime)
	}
}

func TestSolve1DRespectsTimeLimit(t *testing.T) {
	in := gen.Tiny1T(3) // 11 candidates: too big to finish in a few ms
	start := time.Now()
	res, err := Solve1D(context.Background(), in, Options{TimeLimit: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 20*time.Second {
		t.Errorf("time limit ignored: %v", time.Since(start))
	}
	if res.Status == ilp.Optimal && res.Solution == nil {
		t.Error("optimal status without a solution")
	}
	if res.Solution != nil {
		if err := res.Solution.Validate(in); err != nil {
			t.Errorf("incumbent invalid: %v", err)
		}
	}
}

func TestSolve2DTiny(t *testing.T) {
	p := gen.Params{
		Name: "exact-tiny2d", Kind: core.TwoD,
		NumChars: 4, NumRegions: 1,
		StencilW: 90, StencilH: 90,
		MinWidth: 40, MaxWidth: 40, MinHeight: 40, MaxHeight: 40,
		MinBlank: 3, MaxBlank: 10,
		MinShots: 2, MaxShots: 30, ShotAreaUnit: 45,
		MaxRepeat: 10,
		Seed:      7,
	}
	in := gen.Generate(p)
	res, err := Solve2D(context.Background(), in, Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution == nil {
		t.Fatalf("no solution, status %v", res.Status)
	}
	if err := res.Solution.Validate(in); err != nil {
		t.Fatalf("exact 2D solution invalid: %v", err)
	}
	if res.Solution.NumSelected() == 0 {
		t.Error("exact 2D solver selected nothing")
	}
}

func TestSolveRejectsWrongKind(t *testing.T) {
	if _, err := Solve1D(context.Background(), gen.Small(core.TwoD, 5, 1, 1), Options{TimeLimit: time.Second}); err == nil {
		t.Error("Solve1D accepted a 2D instance")
	}
	if _, err := Solve2D(context.Background(), gen.Small(core.OneD, 5, 1, 1), Options{TimeLimit: time.Second}); err == nil {
		t.Error("Solve2D accepted a 1D instance")
	}
}

// The golden determinism contract of the parallel branch and bound, checked
// end-to-end through the formulation layer: Workers=1 and Workers=8 must
// return the identical status, objective and stencil plan (run under -race
// in CI).
func TestWorkersDeterminism1D(t *testing.T) {
	in := tiny1D(6)
	seq, err := Solve1D(context.Background(), in, Options{TimeLimit: 30 * time.Second, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve1D(context.Background(), in, Options{TimeLimit: 30 * time.Second, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertSameExact(t, in, seq, par)
}

func TestWorkersDeterminism2D(t *testing.T) {
	p := gen.Params{
		Name: "exact-det2d", Kind: core.TwoD,
		NumChars: 4, NumRegions: 1,
		StencilW: 90, StencilH: 90,
		MinWidth: 40, MaxWidth: 40, MinHeight: 40, MaxHeight: 40,
		MinBlank: 3, MaxBlank: 10,
		MinShots: 2, MaxShots: 30, ShotAreaUnit: 45,
		MaxRepeat: 10,
		Seed:      7,
	}
	in := gen.Generate(p)
	seq, err := Solve2D(context.Background(), in, Options{TimeLimit: 30 * time.Second, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve2D(context.Background(), in, Options{TimeLimit: 30 * time.Second, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertSameExact(t, in, seq, par)
}

// assertSameExact requires two exact results to carry the same status, the
// same writing time and the same character selection.
func assertSameExact(t *testing.T, in *core.Instance, a, b *Result) {
	t.Helper()
	if a.Status != b.Status {
		t.Fatalf("status differs across worker counts: %v vs %v", a.Status, b.Status)
	}
	if (a.Solution == nil) != (b.Solution == nil) {
		t.Fatalf("one worker count produced a plan, the other did not")
	}
	if a.Solution == nil {
		return
	}
	if err := a.Solution.Validate(in); err != nil {
		t.Fatalf("sequential plan invalid: %v", err)
	}
	if err := b.Solution.Validate(in); err != nil {
		t.Fatalf("parallel plan invalid: %v", err)
	}
	if a.Solution.WritingTime != b.Solution.WritingTime {
		t.Errorf("writing time differs: %d vs %d", a.Solution.WritingTime, b.Solution.WritingTime)
	}
	for i, sel := range a.Solution.Selected {
		if sel != b.Solution.Selected[i] {
			t.Errorf("selection of character %d differs across worker counts", i)
		}
	}
}
