package knapsack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eblow/internal/lp"
)

func TestRelaxedAssignmentEmpty(t *testing.T) {
	rel, err := RelaxedAssignment(nil, nil)
	if err != nil || rel.Value != 0 {
		t.Errorf("empty: %v %v", rel, err)
	}
	rel, err = RelaxedAssignment([]Item{{Weight: 1, Profit: 1}}, nil)
	if err != nil || rel.Value != 0 {
		t.Errorf("no knapsacks: %v %v", rel, err)
	}
}

func TestRelaxedAssignmentErrors(t *testing.T) {
	if _, err := RelaxedAssignment([]Item{{Weight: -1, Profit: 1}}, []float64{5}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := RelaxedAssignment([]Item{{Weight: 1, Profit: 1}}, []float64{-5}); err == nil {
		t.Error("negative capacity should error")
	}
}

func TestRelaxedAssignmentSimple(t *testing.T) {
	items := []Item{
		{Weight: 10, Profit: 60},  // density 6
		{Weight: 20, Profit: 100}, // density 5
		{Weight: 30, Profit: 120}, // density 4
	}
	rel, err := RelaxedAssignment(items, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	// Classic fractional knapsack answer: 60 + 100 + (20/30)*120 = 240.
	if math.Abs(rel.Value-240) > 1e-9 {
		t.Errorf("Value = %v, want 240", rel.Value)
	}
	if rel.Fraction[0] != 1 || rel.Fraction[1] != 1 || math.Abs(rel.Fraction[2]-2.0/3.0) > 1e-9 {
		t.Errorf("Fraction = %v", rel.Fraction)
	}
}

func TestRelaxedAssignmentMultipleKnapsacks(t *testing.T) {
	items := []Item{
		{Weight: 10, Profit: 50},
		{Weight: 10, Profit: 40},
		{Weight: 10, Profit: 30},
	}
	rel, err := RelaxedAssignment(items, []float64{15, 15})
	if err != nil {
		t.Fatal(err)
	}
	// Total capacity 30 fits all items: value 120.
	if math.Abs(rel.Value-120) > 1e-9 {
		t.Errorf("Value = %v, want 120", rel.Value)
	}
	// Per-knapsack loads must respect the capacities.
	for j := 0; j < 2; j++ {
		load := 0.0
		for i := range items {
			load += rel.A[i][j] * items[i].Weight
		}
		if load > 15+1e-9 {
			t.Errorf("knapsack %d overloaded: %v", j, load)
		}
	}
}

func TestZeroWeightAndNonPositiveProfit(t *testing.T) {
	items := []Item{
		{Weight: 0, Profit: 7},
		{Weight: 5, Profit: 0},
		{Weight: 5, Profit: -3},
	}
	rel, err := RelaxedAssignment(items, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rel.Value-7) > 1e-9 {
		t.Errorf("Value = %v, want 7", rel.Value)
	}
	if rel.Fraction[1] != 0 || rel.Fraction[2] != 0 {
		t.Errorf("non-positive profit items selected: %v", rel.Fraction)
	}
}

func TestExactBinary(t *testing.T) {
	best, chosen := ExactBinary([]int{3, 4, 5}, []float64{10, 13, 14}, 7)
	if math.Abs(best-23) > 1e-9 {
		t.Errorf("best = %v, want 23", best)
	}
	if !chosen[0] || !chosen[1] || chosen[2] {
		t.Errorf("chosen = %v, want [true true false]", chosen)
	}
	best, chosen = ExactBinary(nil, nil, 10)
	if best != 0 || len(chosen) != 0 {
		t.Error("empty knapsack")
	}
	best, _ = ExactBinary([]int{1}, []float64{5}, 0)
	if best != 0 {
		t.Error("zero capacity")
	}
	best, chosen = ExactBinary([]int{2, 2}, []float64{-1, 3}, 4)
	if best != 3 || chosen[0] {
		t.Error("negative profit item must not be chosen")
	}
}

// Property: the structured relaxation matches the general simplex solution
// of the same LP on small random instances.
func TestRelaxationMatchesSimplex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		m := 1 + rng.Intn(3)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Weight: float64(1 + rng.Intn(20)), Profit: float64(rng.Intn(50))}
		}
		caps := make([]float64, m)
		for j := range caps {
			caps[j] = float64(5 + rng.Intn(40))
		}
		rel, err := RelaxedAssignment(items, caps)
		if err != nil {
			return false
		}

		// General LP over a_ij.
		p := lp.NewProblem(n * m)
		obj := make([]float64, n*m)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				obj[i*m+j] = items[i].Profit
				p.SetBounds(i*m+j, 0, 1)
			}
		}
		p.SetObjective(obj, true)
		for j := 0; j < m; j++ {
			terms := make([]lp.Term, 0, n)
			for i := 0; i < n; i++ {
				terms = append(terms, lp.Term{Var: i*m + j, Coeff: items[i].Weight})
			}
			p.AddConstraint(terms, lp.LE, caps[j])
		}
		for i := 0; i < n; i++ {
			terms := make([]lp.Term, 0, m)
			for j := 0; j < m; j++ {
				terms = append(terms, lp.Term{Var: i*m + j, Coeff: 1})
			}
			p.AddConstraint(terms, lp.LE, 1)
		}
		res, err := lp.Solve(p)
		if err != nil || res.Status != lp.Optimal {
			return false
		}
		return math.Abs(res.Objective-rel.Value) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the relaxation assignment matrix is feasible (capacities and
// per-item fraction bounds) and consistent with the aggregate fractions, and
// the relaxation value upper-bounds the exact integral single-knapsack value
// when there is one knapsack with integer capacity.
func TestRelaxationFeasibilityAndBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		items := make([]Item, n)
		weights := make([]int, n)
		profits := make([]float64, n)
		for i := range items {
			weights[i] = 1 + rng.Intn(15)
			profits[i] = float64(rng.Intn(40))
			items[i] = Item{Weight: float64(weights[i]), Profit: profits[i]}
		}
		capacity := 5 + rng.Intn(60)
		rel, err := RelaxedAssignment(items, []float64{float64(capacity)})
		if err != nil {
			return false
		}
		load := 0.0
		for i := range items {
			rowSum := 0.0
			for j := range rel.A[i] {
				if rel.A[i][j] < -1e-9 {
					return false
				}
				rowSum += rel.A[i][j]
			}
			if rowSum > 1+1e-9 {
				return false
			}
			if math.Abs(rowSum-rel.Fraction[i]) > 1e-6 {
				return false
			}
			load += rel.Fraction[i] * items[i].Weight
		}
		if load > float64(capacity)+1e-6 {
			return false
		}
		exact, _ := ExactBinary(weights, profits, capacity)
		return rel.Value >= exact-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
