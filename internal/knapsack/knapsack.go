// Package knapsack provides the structured linear-programming relaxation of
// the simplified 1DOSP formulation (formulation (4)/(5) in the E-BLOW
// paper). The relaxation is a multiple-knapsack problem with assignment
// restrictions in which an item has the same weight in every knapsack; its
// LP optimum therefore equals the optimum of a single fractional knapsack
// over the aggregate capacity and can be computed greedily in O(n log n)
// instead of running a general simplex over the n*m assignment variables.
// This is what makes the successive-rounding loop of E-BLOW practical for
// MCC-sized instances (4000 candidates) without a commercial LP solver.
//
// The package also contains an exact 0/1 knapsack dynamic program used by
// tests to cross-check bounds.
package knapsack

import (
	"errors"
	"fmt"
	"sort"
)

// Item is a knapsack item: Weight is the effective width w_i - s_i of a
// character under the symmetric-blank assumption and Profit its current
// profit value (Eqn. 6 of the paper).
type Item struct {
	Weight float64
	Profit float64
}

// Relaxation is an optimal solution of the LP relaxation.
type Relaxation struct {
	// Value is the optimal objective of the relaxation.
	Value float64
	// A[i][j] is the fractional amount of item i assigned to knapsack j.
	// For every item, sum_j A[i][j] <= 1.
	A [][]float64
	// Fraction[i] = sum_j A[i][j], the aggregate fractional selection y_i.
	Fraction []float64
}

// ErrBadInput reports invalid items or capacities.
var ErrBadInput = errors.New("knapsack: invalid input")

// RelaxedAssignment solves the LP relaxation of
//
//	max  sum_ij profit_i * a_ij
//	s.t. sum_i weight_i * a_ij <= capacity_j   for every knapsack j
//	     sum_j a_ij <= 1                       for every item i
//	     a_ij >= 0
//
// Items with non-positive profit are never selected (selecting them cannot
// improve the objective); items with zero weight and positive profit are
// always fully selected.
func RelaxedAssignment(items []Item, capacities []float64) (*Relaxation, error) {
	n, m := len(items), len(capacities)
	for i, it := range items {
		if it.Weight < 0 {
			return nil, fmt.Errorf("%w: item %d has negative weight", ErrBadInput, i)
		}
	}
	total := 0.0
	for j, c := range capacities {
		if c < 0 {
			return nil, fmt.Errorf("%w: knapsack %d has negative capacity", ErrBadInput, j)
		}
		total += c
	}

	rel := &Relaxation{
		A:        make([][]float64, n),
		Fraction: make([]float64, n),
	}
	for i := range rel.A {
		rel.A[i] = make([]float64, m)
	}
	if n == 0 || m == 0 {
		return rel, nil
	}

	// Aggregate fractional knapsack: sort by profit density.
	order := make([]int, 0, n)
	for i, it := range items {
		if it.Profit > 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		// Zero-weight items first (infinite density), then by density.
		da := density(ia)
		db := density(ib)
		if da != db {
			return da > db
		}
		return ia.Profit > ib.Profit
	})

	remaining := total
	for _, i := range order {
		it := items[i]
		if it.Weight == 0 {
			rel.Fraction[i] = 1
			rel.Value += it.Profit
			continue
		}
		if remaining <= 0 {
			break
		}
		take := 1.0
		if it.Weight > remaining {
			take = remaining / it.Weight
		}
		rel.Fraction[i] = take
		rel.Value += take * it.Profit
		remaining -= take * it.Weight
	}

	// Distribute the aggregate fractions over the knapsacks with a first-fit
	// split. This yields a feasible assignment matrix whose row sums equal
	// the aggregate fractions; at most one item per knapsack boundary is
	// split, so the matrix is (vertex-like and) nearly integral.
	capLeft := append([]float64(nil), capacities...)
	j := 0
	for _, i := range order {
		frac := rel.Fraction[i]
		if frac <= 0 {
			continue
		}
		w := items[i].Weight
		if w == 0 {
			// Zero-weight items fit anywhere; put them in the first knapsack.
			rel.A[i][0] += frac
			continue
		}
		need := frac * w
		for need > 1e-12 && j < len(capLeft) {
			if capLeft[j] <= 1e-12 {
				j++
				continue
			}
			put := need
			if put > capLeft[j] {
				put = capLeft[j]
			}
			rel.A[i][j] += put / w
			capLeft[j] -= put
			need -= put
		}
	}
	return rel, nil
}

func density(it Item) float64 {
	if it.Weight == 0 {
		return 1e18
	}
	return it.Profit / it.Weight
}

// ExactBinary solves the exact 0/1 knapsack with integer weights by dynamic
// programming and returns the best profit and the chosen items. It is used
// by tests as a reference for rounding bounds and by the baseline planner
// for single-row character selection.
func ExactBinary(weights []int, profits []float64, capacity int) (float64, []bool) {
	n := len(weights)
	chosen := make([]bool, n)
	if capacity <= 0 || n == 0 {
		return 0, chosen
	}
	if len(profits) != n {
		panic("knapsack: weights and profits length mismatch")
	}
	// dp[c] = best profit with capacity c; keep per-item take decisions.
	dp := make([]float64, capacity+1)
	take := make([][]bool, n)
	for i := 0; i < n; i++ {
		take[i] = make([]bool, capacity+1)
		w := weights[i]
		if w < 0 {
			panic("knapsack: negative weight")
		}
		p := profits[i]
		if p <= 0 {
			continue
		}
		for c := capacity; c >= w; c-- {
			if cand := dp[c-w] + p; cand > dp[c] {
				dp[c] = cand
				take[i][c] = true
			}
		}
	}
	best := dp[capacity]
	c := capacity
	for i := n - 1; i >= 0; i-- {
		if take[i][c] {
			chosen[i] = true
			c -= weights[i]
		}
	}
	return best, chosen
}
