package eblow_test

import (
	"context"
	"fmt"
	"log"

	"eblow"
)

// A single strategy by name: the registry resolves it, the unified Result
// reports the outcome. These examples run as tests, so the README snippets
// they mirror cannot drift from the real API.
func ExampleSolveWith() {
	ctx := context.Background()
	in := eblow.SmallInstance(eblow.OneD, 80, 2, 42)

	res, err := eblow.SolveWith(ctx, in, eblow.Params{
		Strategies: []string{"greedy"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strategy:", res.Strategy)
	fmt.Println("feasible:", res.Feasible)
	// Output:
	// strategy: greedy
	// feasible: true
}

// Several strategy names race as a portfolio under one deadline: every
// entrant's outcome lands in Result.Runs and the best feasible plan wins.
func ExampleSolveWith_portfolioRace() {
	ctx := context.Background()
	in := eblow.SmallInstance(eblow.OneD, 80, 2, 42)

	res, err := eblow.SolveWith(ctx, in, eblow.Params{
		Strategies: []string{"eblow", "row25", "greedy"},
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("winner:", res.Strategy)
	for _, r := range res.Runs {
		fmt.Println("ran:", r.Name, r.Err == nil)
	}
	// Output:
	// winner: eblow
	// ran: eblow true
	// ran: row25 true
	// ran: greedy true
}

// A learned race conditions the portfolio on the instance's shape: after a
// few recorded races the store reorders the entrants by win rate and prunes
// heavy strategies that never win the shape. An empty store reproduces the
// static order bit-for-bit, so opting in is never a regression.
func ExampleSolveWith_learnedRace() {
	ctx := context.Background()
	in := eblow.SmallInstance(eblow.TwoD, 40, 2, 12)
	store := eblow.NewLearnStore() // or eblow.OpenLearn("stats.json")

	p := eblow.Params{
		Strategies: []string{"portfolio"},
		Seed:       7,
		Restarts:   2,
		LearnStore: store, // consult the plan + record each race's outcome
	}
	// Warm the store: the first races run the static order and record who
	// wins this shape.
	for i := 0; i < 3; i++ {
		if _, err := eblow.SolveWith(ctx, in, p); err != nil {
			log.Fatal(err)
		}
	}
	// Now the schedule is learned: the race leads with the recorded winner
	// and drops the heavy strategy that never won.
	res, err := eblow.SolveWith(ctx, in, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("learned:", res.Plan.Learned)
	fmt.Println("order:", res.Plan.Order)
	fmt.Println("pruned:", res.Plan.Pruned)
	fmt.Println("winner:", res.Strategy)
	// Output:
	// learned: true
	// order: [eblow greedy]
	// pruned: [sa24]
	// winner: eblow
}
