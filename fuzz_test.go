package eblow

import (
	"bytes"
	"testing"
)

// FuzzDecodeInstance feeds arbitrary bytes to the facade's instance
// decoder. Two invariants: DecodeInstance never panics (torn files and
// hostile uploads reach it via the HTTP submit path), and anything it
// accepts survives an encode/decode round trip — a valid instance must
// not become invalid by being saved.
func FuzzDecodeInstance(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":2,"characters":null}`))
	f.Add([]byte(`not json at all`))
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, SmallInstance(OneD, 4, 2, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := DecodeInstance(bytes.NewReader(data))
		if err != nil {
			if in != nil {
				t.Fatalf("DecodeInstance returned both an instance and an error: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := EncodeInstance(&out, in); err != nil {
			t.Fatalf("re-encoding an accepted instance failed: %v", err)
		}
		again, err := DecodeInstance(&out)
		if err != nil {
			t.Fatalf("round trip of an accepted instance failed: %v", err)
		}
		if again.Kind != in.Kind || len(again.Characters) != len(in.Characters) ||
			again.NumRegions != in.NumRegions {
			t.Fatalf("round trip changed the instance: %+v -> %+v", in, again)
		}
	})
}
