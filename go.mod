module eblow

go 1.22
