#!/usr/bin/env bash
# Fails when README.md, ROADMAP.md or docs/*.md contain a relative markdown
# link whose target does not exist. External (http/mailto) and pure-anchor
# links are skipped; anchors on relative links are stripped before the
# existence check. Wired into CI so moved or renamed docs cannot leave
# dangling references behind.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for f in README.md ROADMAP.md docs/*.md; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  while IFS= read -r target; do
    target="${target%% *}" # drop optional markdown link titles
    case "$target" in
      http://* | https://* | mailto:* | \#*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "broken link in $f: ($target)"
      status=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')
done

if [ "$status" -eq 0 ]; then
  echo "all relative doc links resolve"
fi
exit "$status"
