#!/usr/bin/env bash
# Smoke test for cmd/eblowd: build the server, boot it on a random port,
# submit a small 1D and a small 2D instance over HTTP, and assert both jobs
# complete with feasible plans. Gates the batched job service surface in CI.
set -euo pipefail

cd "$(dirname "$0")/.."

log=$(mktemp)
bindir=$(mktemp -d)
bin=$bindir/eblowd
cleanup() {
  [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
  rm -f "$log"
  rm -rf "$bindir"
}
trap cleanup EXIT

echo "== building cmd/eblowd"
go build -o "$bin" ./cmd/eblowd

echo "== booting on a random port"
"$bin" -addr 127.0.0.1:0 -workers 2 >"$log" 2>&1 &
server_pid=$!

base=""
for _ in $(seq 1 100); do
  base=$(sed -n 's#.*listening on \(http://[0-9.:]*\)#\1#p' "$log" | head -1)
  [[ -n "$base" ]] && break
  kill -0 "$server_pid" 2>/dev/null || { echo "server died:"; cat "$log"; exit 1; }
  sleep 0.1
done
[[ -n "$base" ]] || { echo "server never reported its address:"; cat "$log"; exit 1; }
echo "   serving at $base"

submit() { # submit <json-body> -> job id
  local resp id
  resp=$(curl -sf "$base/v1/jobs" -d "$1")
  id=$(sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' <<<"$resp" | head -1)
  [[ -n "$id" ]] || { echo "submit failed: $resp" >&2; exit 1; }
  echo "$id"
}

await_done() { # await_done <job-id>
  local job state
  for _ in $(seq 1 600); do
    job=$(curl -sf "$base/v1/jobs/$1")
    state=$(sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' <<<"$job" | head -1)
    case "$state" in
      done)
        grep -q '"feasible": true' <<<"$job" || { echo "job $1 finished without a feasible plan: $job"; exit 1; }
        echo "   job $1 done, feasible"
        return 0
        ;;
      failed|canceled)
        echo "job $1 ended $state: $job"; exit 1 ;;
    esac
    sleep 0.2
  done
  echo "job $1 never finished"; exit 1
}

echo "== submitting a 1D and a 2D job"
id1=$(submit '{"benchmark": "1T-2", "params": {"seed": 1}}')
id2=$(submit '{"benchmark": "2T-1", "solver": "portfolio", "params": {"seed": 1, "deadline": "60s"}}')
await_done "$id1"
await_done "$id2"

echo "== streaming events"
events=$(curl -sfN "$base/v1/jobs/$id1/events")
grep -q '"state":"done"' <<<"$events" || { echo "event stream missing terminal event: $events"; exit 1; }

echo "== cancelling"
id3=$(submit '{"benchmark": "1T-1", "solver": "greedy"}')
curl -sf -X DELETE "$base/v1/jobs/$id3" >/dev/null
state=$(curl -sf "$base/v1/jobs/$id3" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -1)
case "$state" in
  done|canceled) echo "   job $id3 is $state after cancel request" ;;
  *) echo "unexpected state $state after cancel"; exit 1 ;;
esac

echo "eblowd smoke test passed"
