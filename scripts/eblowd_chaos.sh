#!/usr/bin/env bash
# Chaos test for cmd/eblowd's durability and auth layer: boot the server with
# a write-ahead log and an API key file, submit a batch of jobs, kill -9 the
# process mid-queue, restart it on the same WAL, and assert that every
# accepted job reaches a terminal state exactly once and that the replayed
# results are bit-identical (by digest) to an uninterrupted run of the same
# batch. Also asserts the auth contract: unauthenticated requests get 401.
set -euo pipefail

cd "$(dirname "$0")/.."

log=$(mktemp)
workdir=$(mktemp -d)
bin=$workdir/eblowd
wal=$workdir/jobs.wal
refwal=$workdir/reference.wal
keys=$workdir/keys.txt
secret=chaos-secret-0001
cleanup() {
  [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
  [[ -n "${dispatcher_pid:-}" ]] && kill "$dispatcher_pid" 2>/dev/null || true
  for pid in ${backend_pids[@]+"${backend_pids[@]}"}; do
    kill "$pid" 2>/dev/null || true
  done
  rm -f "$log" ${backend_logs[@]+"${backend_logs[@]}"} "${dlog:-}"
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building cmd/eblowd"
go build -o "$bin" ./cmd/eblowd
printf 'chaos %s\n' "$secret" >"$keys"

boot() { # boot <wal-path> -> sets $base and $server_pid
  : >"$log"
  "$bin" -addr 127.0.0.1:0 -workers 1 -wal "$1" -auth-keys "$keys" >"$log" 2>&1 &
  server_pid=$!
  base=""
  for _ in $(seq 1 100); do
    base=$(sed -n 's#.*listening on \(http://[0-9.:]*\)#\1#p' "$log" | head -1)
    [[ -n "$base" ]] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "server died:"; cat "$log"; exit 1; }
    sleep 0.1
  done
  [[ -n "$base" ]] || { echo "server never reported its address:"; cat "$log"; exit 1; }
  echo "   serving at $base (wal $1)"
}

acurl() { curl -s -H "Authorization: Bearer $secret" "$@"; }

submit() { # submit <json-body> -> job id
  local resp id
  resp=$(acurl -f "$base/v1/jobs" -d "$1")
  id=$(sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' <<<"$resp" | head -1)
  [[ -n "$id" ]] || { echo "submit failed: $resp" >&2; exit 1; }
  echo "$id"
}

await_digest() { # await_digest <job-id> -> prints the done job's digest
  local job state digest
  for _ in $(seq 1 600); do
    job=$(acurl -f "$base/v1/jobs/$1")
    state=$(sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' <<<"$job" | head -1)
    case "$state" in
      done)
        digest=$(sed -n 's/.*"digest": "\([0-9a-f]*\)".*/\1/p' <<<"$job" | head -1)
        [[ -n "$digest" ]] || { echo "job $1 done without a digest: $job" >&2; exit 1; }
        echo "$digest"
        return 0
        ;;
      failed|canceled)
        echo "job $1 ended $state: $job" >&2; exit 1 ;;
    esac
    sleep 0.2
  done
  echo "job $1 never finished" >&2; exit 1
}

# The batch: a slow 2D blocker pins the single worker so the rest of the
# batch is still queued when the kill lands.
batch=(
  '{"benchmark": "2D-1", "params": {"seed": 1}}'
  '{"benchmark": "1T-1", "params": {"seed": 1}}'
  '{"benchmark": "1T-2", "params": {"seed": 2}}'
  '{"benchmark": "2T-1", "params": {"seed": 3}}'
  '{"benchmark": "1T-1", "solver": "greedy", "params": {"seed": 4}}'
  '{"benchmark": "1D-1", "params": {"seed": 5}}'
  '{"benchmark": "2T-1", "solver": "greedy", "params": {"seed": 6}}'
)

boot "$wal"

echo "== auth: unauthenticated and wrong-key requests are rejected"
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/jobs")
[[ "$code" == 401 ]] || { echo "unauthenticated request returned $code, want 401"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer wrong-secret-9" "$base/v1/jobs")
[[ "$code" == 401 ]] || { echo "wrong key returned $code, want 401"; exit 1; }
echo "   401 for both"

echo "== submitting ${#batch[@]} jobs, then kill -9 mid-queue"
ids=()
for body in "${batch[@]}"; do
  ids+=("$(submit "$body")")
done
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "   killed with ${#ids[@]} jobs accepted (${ids[*]})"

echo "== restarting on the same WAL"
boot "$wal"
grep -q '^eblowd: wal ' "$log" || { echo "restart logged no replay stats:"; cat "$log"; exit 1; }
sed -n 's/^eblowd: \(wal .*\)/   \1/p' "$log" | head -1

count=$(acurl -f "$base/v1/jobs" | grep -c '"id": "j[0-9]*"')
[[ "$count" == "${#ids[@]}" ]] || { echo "replayed server lists $count jobs, want ${#ids[@]} (no job lost, none duplicated)"; exit 1; }

declare -A replayed
for id in "${ids[@]}"; do
  replayed[$id]=$(await_digest "$id")
  echo "   job $id done, digest ${replayed[$id]:0:12}..."
done
job=$(acurl -f "$base/v1/jobs/${ids[0]}")
grep -q '"key": "chaos"' <<<"$job" || { echo "replayed job lost its key identity: $job"; exit 1; }

kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== uninterrupted reference run on a fresh WAL"
boot "$refwal"
ref_ids=()
for body in "${batch[@]}"; do
  ref_ids+=("$(submit "$body")")
done
for i in "${!ref_ids[@]}"; do
  ref_digest=$(await_digest "${ref_ids[$i]}")
  id=${ids[$i]}
  if [[ "$ref_digest" != "${replayed[$id]}" ]]; then
    echo "digest mismatch for batch entry $i: replayed ${replayed[$id]}, reference $ref_digest"
    exit 1
  fi
done
echo "   all ${#ids[@]} digests match the interrupted run"

kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

# ---------------------------------------------------------------------------
# Dispatcher scenario: a 3-node fleet behind eblowd -dispatch. Jobs shard by
# instance fingerprint, so every 2D-1 submission lands on one backend; that
# backend is kill -9'd while the cohort is mid-race, the survivors must pick
# up its accepted-but-unfinished jobs from the dispatcher's WAL, and after
# the dead node restarts the fleet must list every job exactly once with
# digests bit-identical to an uninterrupted single-node run.
# ---------------------------------------------------------------------------

echo "== dispatcher scenario: 3 backends, kill -9 one mid-race, restart it"

backend_names=(b1 b2 b3)
backend_pids=()
backend_bases=()
backend_logs=()

boot_backend() { # boot_backend <index> <addr> -> fills the backend_* arrays
  local i=$1 addr=$2 blog pid bbase
  blog=$(mktemp)
  "$bin" -addr "$addr" -workers 1 >"$blog" 2>&1 &
  pid=$!
  bbase=""
  for _ in $(seq 1 100); do
    bbase=$(sed -n 's#.*listening on \(http://[0-9.:]*\)#\1#p' "$blog" | head -1)
    [[ -n "$bbase" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "backend died:"; cat "$blog"; exit 1; }
    sleep 0.1
  done
  [[ -n "$bbase" ]] || { echo "backend never reported its address:"; cat "$blog"; exit 1; }
  backend_pids[$i]=$pid
  backend_bases[$i]=$bbase
  backend_logs[$i]=$blog
  echo "   backend ${backend_names[$i]} at $bbase"
}

for i in 0 1 2; do boot_backend "$i" 127.0.0.1:0; done

# One slow 2D cohort (one routing key -> one backend) plus fast spread-out
# jobs on other shapes.
dbatch=(
  '{"benchmark": "2D-1", "params": {"seed": 11}}'
  '{"benchmark": "2D-1", "params": {"seed": 12}}'
  '{"benchmark": "2D-1", "params": {"seed": 13}}'
  '{"benchmark": "1T-1", "params": {"seed": 14}}'
  '{"benchmark": "1T-2", "params": {"seed": 15}}'
  '{"benchmark": "2T-1", "params": {"seed": 16}}'
)

echo "== uninterrupted single-node reference for the fleet batch"
boot "$workdir/dispatch-reference.wal"
dref_ids=()
for body in "${dbatch[@]}"; do
  dref_ids+=("$(submit "$body")")
done
dref_digests=()
for id in "${dref_ids[@]}"; do
  dref_digests+=("$(await_digest "$id")")
done
kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "   reference digests recorded for ${#dref_ids[@]} jobs"

dwal=$workdir/dispatch.wal
dlog=$(mktemp)
"$bin" -addr 127.0.0.1:0 \
  -dispatch "b1=${backend_bases[0]},b2=${backend_bases[1]},b3=${backend_bases[2]}" \
  -wal "$dwal" -health-interval 100ms -fail-after 2 -auth-keys "$keys" >"$dlog" 2>&1 &
dispatcher_pid=$!
base=""
for _ in $(seq 1 100); do
  base=$(sed -n 's#.*listening on \(http://[0-9.:]*\)#\1#p' "$dlog" | head -1)
  [[ -n "$base" ]] && break
  kill -0 "$dispatcher_pid" 2>/dev/null || { echo "dispatcher died:"; cat "$dlog"; exit 1; }
  sleep 0.1
done
[[ -n "$base" ]] || { echo "dispatcher never reported its address:"; cat "$dlog"; exit 1; }
echo "   dispatcher at $base"

echo "== submitting ${#dbatch[@]} jobs through the dispatcher"
dids=()
for body in "${dbatch[@]}"; do
  dids+=("$(submit "$body")")
done

# Find the backend that owns the 2D-1 cohort, then kill -9 the whole node
# while the cohort is still racing on its single worker.
blocker=${dids[0]}
owner=""
for _ in $(seq 1 100); do
  owner=$(acurl -f "$base/v1/jobs/$blocker" | sed -n 's/.*"node": "\(b[0-9]*\)".*/\1/p' | head -1)
  [[ -n "$owner" ]] && break
  sleep 0.1
done
[[ -n "$owner" ]] || { echo "job $blocker was never assigned a node"; exit 1; }
owner_idx=-1
for i in 0 1 2; do
  [[ "${backend_names[$i]}" == "$owner" ]] && owner_idx=$i
done
kill -9 "${backend_pids[$owner_idx]}"
wait "${backend_pids[$owner_idx]}" 2>/dev/null || true
echo "   killed backend $owner (owner of the 2D cohort) with jobs mid-race"

echo "== every job must fail over and finish with the reference digest"
for i in "${!dids[@]}"; do
  digest=$(await_digest "${dids[$i]}")
  if [[ "$digest" != "${dref_digests[$i]}" ]]; then
    echo "digest mismatch for fleet job $i (${dids[$i]}): got $digest, reference ${dref_digests[$i]}"
    exit 1
  fi
  echo "   job ${dids[$i]} done, digest ${digest:0:12}..."
done

echo "== restarting the killed backend; fleet must report 3 alive nodes"
boot_backend "$owner_idx" "${backend_bases[$owner_idx]#http://}"
alive=""
for _ in $(seq 1 100); do
  alive=$(acurl -f "$base/v1/stats" | sed -n 's/.*"aliveNodes": \([0-9]*\).*/\1/p' | head -1)
  [[ "$alive" == 3 ]] && break
  sleep 0.1
done
[[ "$alive" == 3 ]] || { echo "fleet never returned to 3 alive nodes (got ${alive:-none})"; exit 1; }

# No job lost, none duplicated: the dispatcher's public table still lists
# exactly the accepted batch.
count=$(acurl -f "$base/v1/jobs" | grep -c '"id": "j[0-9]*"')
[[ "$count" == "${#dids[@]}" ]] || { echo "dispatcher lists $count jobs, want ${#dids[@]} (no job lost, none duplicated)"; exit 1; }
echo "   fleet healthy again, $count jobs listed exactly once"

kill "$dispatcher_pid" 2>/dev/null || true
wait "$dispatcher_pid" 2>/dev/null || true
dispatcher_pid=""

echo "eblowd chaos test passed"
