package eblow

import (
	"context"

	"eblow/internal/solver"
)

// The unified solver API. Every planning strategy in the repository — the
// paper's E-BLOW planners, the prior-work baselines, the exact ILP and the
// portfolio race — implements the one Solver interface and is configured by
// the one Params struct, so callers (the CLI, the job service, user code)
// can schedule any strategy by name without caring which algorithm family
// it belongs to.
type (
	// Solver is one named OSP planning strategy. Solve validates the
	// instance, rejects unsupported kinds, honours context cancellation
	// plus Params.Deadline, and returns a uniform Result.
	Solver = solver.Solver
	// Params is the unified solver configuration (workers, seed, deadline,
	// restarts, strategy set, optional fine-grained planner options).
	Params = solver.Params
	// Result is the unified solve outcome: the plan, its writing-time
	// objective, feasibility, the producing strategy, wall-clock time and
	// optional trace/stats/exact details.
	Result = solver.Result
	// SolverInfo describes one registered strategy (name, supported kinds,
	// whether it joins the default portfolio race).
	SolverInfo = solver.Entry
	// Run is one strategy's outcome inside a portfolio race (Result.Runs).
	Run = solver.Run
)

// Solvers returns every registered strategy applicable to the given
// instance kind, in registry (portfolio race) order.
func Solvers(kind Kind) []Solver { return solver.ForKind(kind) }

// Lookup returns the named strategy ("eblow", "greedy", "heuristic24",
// "row25", "sa24", "exact", "portfolio").
func Lookup(name string) (Solver, bool) { return solver.Lookup(name) }

// SolverNames lists every registered strategy name, sorted.
func SolverNames() []string { return solver.Names() }

// SolverInfos returns the metadata of every registered strategy in registry
// order.
func SolverInfos() []*SolverInfo { return solver.Entries() }

// LookupInfo returns a copy of the named strategy's registry metadata.
func LookupInfo(name string) (*SolverInfo, bool) {
	e, ok := solver.LookupEntry(name)
	if !ok {
		return nil, false
	}
	cp := *e
	return &cp, true
}

// SolveWith is the single entry point behind Solve, the CLI and the job
// service. The strategy set in p.Strategies picks what runs:
//
//   - empty: the E-BLOW planner for the instance kind (the default);
//   - one name: that strategy alone ("portfolio" runs the default race);
//   - several names: a portfolio race restricted to those strategies.
//
// The context plus p.Deadline bound the solve; results are deterministic
// for a fixed p.Seed regardless of p.Workers unless a deadline truncates an
// annealing run mid-schedule.
func SolveWith(ctx context.Context, in *Instance, p Params) (*Result, error) {
	name := "eblow"
	switch {
	case len(p.Strategies) == 1:
		name = p.Strategies[0]
		if name == "portfolio" {
			p.Strategies = nil // the default race, not a race of "portfolio"
		}
	case len(p.Strategies) > 1:
		name = "portfolio"
	}
	return solver.Solve(ctx, name, in, p)
}
