package eblow

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestSolveWithDefaultMatchesSolve(t *testing.T) {
	in := SmallInstance(OneD, 40, 2, 21)
	r, err := SolveWith(context.Background(), in, Params{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if r.Solution.WritingTime != sol.WritingTime {
		t.Errorf("SolveWith T=%d, Solve T=%d", r.Solution.WritingTime, sol.WritingTime)
	}
	if r.Strategy != "eblow" || !r.Feasible {
		t.Errorf("unexpected result meta: strategy %q feasible %v", r.Strategy, r.Feasible)
	}
}

func TestSolveWithSingleStrategy(t *testing.T) {
	in := SmallInstance(OneD, 40, 2, 22)
	r, err := SolveWith(context.Background(), in, Params{Strategies: []string{"row25"}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Strategy != "row25" {
		t.Errorf("strategy %q, want row25", r.Strategy)
	}
	ref, err := RowHeuristic1D(in)
	if err != nil {
		t.Fatal(err)
	}
	if r.Objective != ref.WritingTime {
		t.Errorf("unified row25 T=%d, legacy wrapper T=%d", r.Objective, ref.WritingTime)
	}
}

func TestSolveWithStrategySetRaces(t *testing.T) {
	in := SmallInstance(OneD, 40, 2, 23)
	r, err := SolveWith(context.Background(), in, Params{Strategies: []string{"greedy", "row25"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 2 {
		t.Fatalf("expected a 2-entrant race, got runs %v", r.Runs)
	}
	if r.Strategy != "greedy" && r.Strategy != "row25" {
		t.Errorf("winner %q not among the requested strategies", r.Strategy)
	}
}

func TestSolveWithPortfolioName(t *testing.T) {
	in := SmallInstance(TwoD, 30, 2, 24)
	r, err := SolveWith(context.Background(), in, Params{Strategies: []string{"portfolio"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != len(PortfolioStrategies(TwoD)) {
		t.Errorf("default race had %d entrants, want %d", len(r.Runs), len(PortfolioStrategies(TwoD)))
	}
}

func TestSolveWithUnknownStrategy(t *testing.T) {
	in := SmallInstance(OneD, 20, 2, 25)
	if _, err := SolveWith(context.Background(), in, Params{Strategies: []string{"nope"}}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestLookupAndSolvers(t *testing.T) {
	if _, ok := Lookup("eblow"); !ok {
		t.Error("eblow missing from registry")
	}
	if _, ok := Lookup("bogus"); ok {
		t.Error("bogus solver found")
	}
	names := map[string]bool{}
	for _, s := range Solvers(OneD) {
		names[s.Name()] = true
	}
	for _, want := range []string{"eblow", "row25", "heuristic24", "greedy", "exact", "portfolio"} {
		if !names[want] {
			t.Errorf("Solvers(OneD) missing %q", want)
		}
	}
	if names["sa24"] {
		t.Error("Solvers(OneD) lists the 2D-only sa24")
	}
}

func TestEncodeDecodeInstanceRoundTrip(t *testing.T) {
	in := SmallInstance(TwoD, 20, 2, 26)
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, back) {
		t.Error("Encode/Decode round trip lost data")
	}
}

func TestDecodeInstanceErrors(t *testing.T) {
	if _, err := DecodeInstance(strings.NewReader("{broken")); err == nil ||
		!strings.HasPrefix(err.Error(), "eblow:") {
		t.Errorf("malformed JSON error %v lacks the eblow: prefix", err)
	}
	if _, err := DecodeInstance(strings.NewReader("{}")); err == nil ||
		!strings.HasPrefix(err.Error(), "eblow:") {
		t.Errorf("invalid instance error %v lacks the eblow: prefix", err)
	}
}

func TestReadInstanceErrorsCarryPrefix(t *testing.T) {
	if _, err := ReadInstance("/does/not/exist.json"); err == nil ||
		!strings.HasPrefix(err.Error(), "eblow:") {
		t.Errorf("missing file error %v lacks the eblow: prefix", err)
	}
}
