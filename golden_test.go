package eblow

import (
	"context"
	"testing"
	"time"

	"eblow/internal/gen"
)

// Golden regression anchors: one small deterministic instance per benchmark
// family, solved with the default E-BLOW planner. The committed values pin
// the solver's solution quality — a refactor that silently degrades (or
// accidentally changes) the planner breaks this test instead of slipping
// through. If a deliberate algorithm change moves a value, re-derive it with
// `go test -run TestGoldenObjectives -v` and update the table in the same
// commit that changes the algorithm.
func TestGoldenObjectives(t *testing.T) {
	golden := map[string]struct {
		writingTime int64
		selected    int
	}{
		"1D": {writingTime: 2540, selected: 117},
		"1M": {writingTime: 1590, selected: 114},
		"2D": {writingTime: 2552, selected: 102},
		"2M": {writingTime: 1246, selected: 108},
		"1T": {writingTime: 49, selected: 6},
		"2T": {writingTime: 32, selected: 5},
	}

	for _, family := range []string{"1D", "1M", "2D", "2M", "1T", "2T"} {
		family := family
		t.Run(family, func(t *testing.T) {
			in, err := gen.SmallFamily(family)
			if err != nil {
				t.Fatal(err)
			}
			var sol *Solution
			if in.Kind == OneD {
				opt := Defaults1D()
				// The fast-convergence ILP normally carries a 2s wall-clock
				// limit; on these tiny instances it finishes in milliseconds,
				// but a generous limit makes the anchor immune to a heavily
				// loaded CI machine truncating the search differently.
				opt.ILPTimeLimit = 10 * time.Minute
				sol, _, err = Solve1D(context.Background(), in, opt)
			} else {
				opt := Defaults2D()
				opt.Seed = 1
				sol, _, err = Solve2D(context.Background(), in, opt)
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := sol.Validate(in); err != nil {
				t.Fatalf("invalid solution: %v", err)
			}
			want := golden[family]
			t.Logf("%s: writingTime=%d selected=%d", family, sol.WritingTime, sol.NumSelected())
			if sol.WritingTime != want.writingTime {
				t.Errorf("writing time drifted: got %d, golden %d", sol.WritingTime, want.writingTime)
			}
			if sol.NumSelected() != want.selected {
				t.Errorf("selected count drifted: got %d, golden %d", sol.NumSelected(), want.selected)
			}
		})
	}
}
